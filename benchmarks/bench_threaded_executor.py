"""Serial vs threaded wave-executor wall clock on the 3-level 3D cavity.

The paper's runtime executes independent kernels concurrently on CUDA
streams (Fig. 2); our deferred wave executor replays the same schedule
on a host thread pool.  This benchmark records the serial-vs-threaded
wall-clock comparison into ``BENCH_threaded_executor.json`` and asserts
bitwise equality of the final state — the speedup assertion only applies
on hosts with >1 CPU core (NumPy overlaps only where the GIL is
released, and a single core cannot run two bodies at once).
"""

import os

from conftest import run_once

from repro.bench.harness import compare_serial_threaded
from repro.bench.workloads import lid_cavity
from repro.core.fusion import FUSED_FULL
from repro.io.tables import format_table
from repro.obs import write_bench_json


def test_threaded_executor_speedup(benchmark, report):
    wl = lid_cavity(base=(16, 16, 16), num_levels=3, lattice="D3Q19")

    def run():
        return compare_serial_threaded(wl, FUSED_FULL, steps=5, warmup=1)

    cmp = run_once(benchmark, run)

    report("", format_table(
        ["Workload", "Serial s", "Threaded s", "Speedup", "Identical",
         "Workers", "Cores"],
        [[cmp["workload"], f"{cmp['serial_seconds']:.3f}",
          f"{cmp['threaded_seconds']:.3f}", f"{cmp['speedup']:.2f}x",
          str(cmp["bit_identical"]), cmp["workers"], cmp["cpu_count"]]],
        title="Deferred wave executor: serial vs threaded (3-level 3D cavity)"))
    write_bench_json("threaded_executor", cmp)

    assert cmp["bit_identical"], "threaded execution must be bit-identical"
    if (os.cpu_count() or 1) >= 2:
        assert cmp["speedup"] >= 1.1, (
            f"expected >=1.1x on a multi-core host, got {cmp['speedup']:.2f}x")
    else:
        report(f"speedup {cmp['speedup']:.2f}x on a single-core host "
               "(>=1.1x criterion needs >1 core; recorded, not asserted)")

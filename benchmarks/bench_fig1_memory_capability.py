"""Figure 1 / Section VI-B — the single-GPU capability claim.

The paper: a 1596x840x840 (finest resolution) wind tunnel with an
airplane fits on one A100-40GB thanks to refinement, while even the
most frugal uniform layout (single-buffer AA method) is limited to about
794^3 on the same card.  We regenerate both sides: Monte-Carlo voxel
counts over the airplane proxy's refinement shells drive the analytic
memory model, and the uniform AA bound is computed directly.
"""

from conftest import run_once

from repro.bench.workloads import airplane_geometry
from repro.gpu.device import A100_40GB
from repro.gpu.memory import (mc_level_counts, refined_memory_bytes,
                              uniform_aa_max_cube, uniform_memory_bytes)
from repro.io.tables import format_table
from repro.obs import write_bench_json

FINEST = (1596, 840, 840)


def test_fig1_memory_capability(benchmark, report):
    base, plane, widths = airplane_geometry(finest_shape=FINEST, scale=1.0,
                                            num_levels=4)

    def run():
        return mc_level_counts(plane, base, widths, samples=500_000)

    counts = run_once(benchmark, run)

    rep = refined_memory_bytes(counts, q=27, itemsize=8, scheme="optimized")
    uniform_same = uniform_memory_bytes(FINEST, q=27, itemsize=8, buffers=1)
    aa_cube = uniform_aa_max_cube(A100_40GB, q=19, itemsize=4)

    rows = [[f"level {lv}", f"{n / 1e6:.2f}M"]
            for lv, n in enumerate(counts["owned"])]
    rows.append(["total", f"{sum(counts['owned']) / 1e6:.2f}M"])
    report("", format_table(["Level", "Active voxels"], rows,
                            title=f"Fig. 1: refined {FINEST[0]}x{FINEST[1]}x"
                                  f"{FINEST[2]} airplane tunnel (4 levels)"))
    report(f"refined footprint (D3Q27 fp64, 2 buffers + ghosts + metadata): "
           f"{rep.total / 1e9:.1f} GB on a {A100_40GB.mem_capacity_gb:.0f} GB card",
           f"uniform grid at the same finest resolution (AA, 1 buffer): "
           f"{uniform_same / 1e9:.0f} GB -> impossible",
           f"largest uniform AA cube (D3Q19 fp32): {aa_cube}^3 "
           f"(paper: ~794^3)")

    write_bench_json("fig1_memory_capability", {
        "owned_per_level": [int(n) for n in counts["owned"]],
        "refined_gb": rep.total / 1e9,
        "uniform_same_gb": uniform_same / 1e9,
        "uniform_aa_max_cube": int(aa_cube)})

    assert rep.fits(A100_40GB)                      # the capability claim
    assert uniform_same > A100_40GB.capacity_bytes  # uniform cannot
    assert 780 <= aa_cube <= 810                    # the paper's 794^3 bound
    # refinement concentrates work: the finest level holds most voxels but
    # covers a tiny fraction of the tunnel volume
    finest_equiv = FINEST[0] * FINEST[1] * FINEST[2]
    assert counts["owned"][-1] < 0.05 * finest_equiv
    benchmark.extra_info["total_gb"] = rep.total / 1e9

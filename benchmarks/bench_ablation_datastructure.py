"""Section V-B design-choice ablations: block size and space-filling curve.

The paper argues two data-structure decisions:

1. decoupling the octree branching factor (2^3) from the memory block
   size — "2^3 memory blocks provide low locality for stencil operations,
   and 2^3 CUDA blocks do not declare enough threads to fill up an entire
   CUDA warp" — hence B^3 blocks with B = 4 (64 threads = 2 warps);
2. ordering blocks along a space-filling curve to improve inter-block
   locality (Sweep / Morton / Hilbert).

We quantify both on the sphere workload: allocation padding, per-cell
metadata overhead and thread-granularity for B in {2, 4, 8}; and an
inter-block locality metric per curve.
"""

import dataclasses

import numpy as np
from conftest import run_once

from repro.bench.workloads import sphere_tunnel
from repro.core.simulation import Simulation
from repro.io.tables import format_table
from repro.obs import write_bench_json


def build(block_size=4, curve="morton"):
    wl = sphere_tunnel(scale=0.125)
    spec = dataclasses.replace(wl.spec, block_size=block_size, curve=curve)
    sim = Simulation.from_config(spec, wl.sim_config())
    return sim.mgrid


def test_block_size_ablation(benchmark, report):
    def run():
        return {b: build(block_size=b) for b in (2, 4, 8)}

    grids = run_once(benchmark, run)

    rows = []
    stats = {}
    for b, mg in grids.items():
        alloc = sum(lv.n_alloc for lv in mg.levels)
        active = sum(lv.grid.n_active for lv in mg.levels)
        meta = sum(sum(lv.grid.metadata_bytes().values()) for lv in mg.levels)
        blocks = sum(lv.grid.n_blocks for lv in mg.levels)
        stats[b] = {"pad": alloc / active, "meta": meta / active,
                    "threads": b ** 3}
        rows.append([f"B={b}", blocks, alloc / active, meta / active, b ** 3])
    report("", format_table(
        ["Block size", "Blocks", "Alloc/active", "Metadata B/cell",
         "Threads/block"],
        rows, title="Section V-B ablation: memory-block size",
        floatfmt="{:.3f}"))

    # B=2 blocks can't fill a warp and drown in per-block metadata
    assert stats[2]["meta"] > 3 * stats[4]["meta"]
    assert stats[2]["threads"] < 32 <= stats[4]["threads"]
    # B=8 blocks waste allocation on the curved interface shells
    assert stats[8]["pad"] > stats[4]["pad"]
    benchmark.extra_info["padding"] = {str(b): s["pad"] for b, s in stats.items()}
    write_bench_json("block_size_ablation",
                     {"stats": {str(b): s for b, s in stats.items()}})


def test_sfc_curve_ablation(benchmark, report):
    """Locality = fraction of face-neighbouring block pairs whose memory
    ranks land inside one cache-sized window (64 blocks ~ an L2 working
    set).  A plain sweep keeps only the fastest axis close; space-filling
    curves keep *all* axes close, which is why the paper orders blocks
    along them (Section V-A)."""
    import itertools

    from repro.grid.sfc import block_order

    shape = (32, 32, 32)
    coords = np.array(list(itertools.product(*[range(s) for s in shape])))

    def run():
        return {c: block_order(coords, shape, c)
                for c in ("sweep", "morton", "hilbert")}

    orders = run_once(benchmark, run)

    def window_fraction(perm, window=64):
        rank = np.empty(len(coords), dtype=np.int64)
        rank[perm] = np.arange(len(coords))
        within, count = 0, 0
        for ax in range(3):
            nc = coords.copy()
            nc[:, ax] += 1
            ok = nc[:, ax] < shape[ax]
            flat = (nc[ok][:, 0] * shape[1] + nc[ok][:, 1]) * shape[2] + nc[ok][:, 2]
            d = np.abs(rank[flat] - rank[ok.nonzero()[0]])
            within += int((d <= window).sum())
            count += int(ok.sum())
        return within / count

    rows = []
    scores = {}
    for curve, perm in orders.items():
        scores[curve] = window_fraction(perm)
        rows.append([curve, scores[curve]])
    report("", format_table(
        ["Curve", "Face neighbours within a 64-block window"],
        rows, title="Section V-A ablation: block ordering (32^3 block grid)",
        floatfmt="{:.3f}"))
    write_bench_json("sfc_curve_ablation", {"window_fraction": scores})
    # curved orders keep neighbouring blocks co-resident far more often
    assert scores["morton"] > scores["sweep"] + 0.1
    assert scores["hilbert"] > scores["sweep"] + 0.1

"""Figure 7 — lid-driven cavity validation against Ghia, Ghia & Shin (1982).

Runs the nonuniform cavity at Re = 100 to steady state and probes the
normalized centerline velocity profiles, exactly like the paper's Fig. 7.
The paper shows the curves "well-aligned" with the reference; we assert a
quantitative version of that at this bench's (reduced) resolution.  The
2-D configuration is used because Ghia's reference data is 2-D; the 3-D
cavity reproduces the same profiles on its mid-plane (see the
lid_driven_cavity example for the 3-D run).
"""

from conftest import run_once

import numpy as np

from repro.bench.workloads import lid_cavity
from repro.core.simulation import Simulation
from repro.io.sampling import centerline_profile
from repro.io.tables import format_table
from repro.obs import write_bench_json
from repro.validation import GHIA_RE100_U, GHIA_RE100_V, interp_profile


def test_fig7_ghia_validation(benchmark, report):
    lid = 0.1
    wl = lid_cavity(base=(24, 24), num_levels=2, reynolds=100.0,
                    lid_speed=lid, lattice="D2Q9")

    def run():
        sim = Simulation.from_config(wl.spec, wl.sim_config())
        sim.run(1500)
        return sim

    sim = run_once(benchmark, run)
    assert sim.is_stable()

    y, u = centerline_profile(sim, axis=1, component=0)
    x, v = centerline_profile(sim, axis=0, component=1)
    ug = interp_profile(GHIA_RE100_U[:, 0], y, u / lid)
    vg = interp_profile(GHIA_RE100_V[:, 0], x, v / lid)

    rows = [[f"{yy:.4f}", float(o), float(r), float(abs(o - r))]
            for yy, o, r in zip(GHIA_RE100_U[:, 0], ug, GHIA_RE100_U[:, 1])]
    report("", format_table(["y", "ours", "Ghia", "|diff|"], rows,
                            title="Fig. 7: u/u_lid on the vertical centerline "
                                  "(Re=100)", floatfmt="{:.4f}"))
    rows = [[f"{xx:.4f}", float(o), float(r), float(abs(o - r))]
            for xx, o, r in zip(GHIA_RE100_V[:, 0], vg, GHIA_RE100_V[:, 1])]
    report(format_table(["x", "ours", "Ghia", "|diff|"], rows,
                        title="Fig. 7: v/u_lid on the horizontal centerline",
                        floatfmt="{:.4f}"))

    err_u = float(np.abs(ug - GHIA_RE100_U[:, 1]).max())
    err_v = float(np.abs(vg - GHIA_RE100_V[:, 1]).max())
    report(f"max deviations: u {err_u:.4f}, v {err_v:.4f} "
           f"(48 finest voxels across the box; tightens with resolution)")
    benchmark.extra_info["err_u"] = err_u
    benchmark.extra_info["err_v"] = err_v
    write_bench_json("fig7_ghia_validation", {
        "err_u": err_u, "err_v": err_v,
        "profile_u": [float(v) for v in ug],
        "profile_v": [float(v) for v in vg]})
    # "well-aligned" at this resolution: within a few percent of u_lid
    assert err_u < 0.10
    assert err_v < 0.05
    # the profiles capture the primary vortex: sign structure of Ghia's data
    assert ug[GHIA_RE100_U[:, 0] < 0.6].min() < -0.15
    assert vg[GHIA_RE100_V[:, 0] < 0.3].max() > 0.10
    assert vg[GHIA_RE100_V[:, 0] > 0.7].min() < -0.15

"""Figure 6 — snapshots of the lid-driven cavity flow (Re = 100, BGK, D3Q19).

The paper shows the mid-plane flow at several iterations of a 3-level
nonuniform run.  We regenerate the quantitative content of those
snapshots: the mid-plane speed field at successive iterations, the
spin-up toward the steady primary vortex, and the incompressibility of
the converged state.
"""

from conftest import run_once

import numpy as np

from repro.bench.workloads import lid_cavity
from repro.core.simulation import Simulation
from repro.io.sampling import composite_fields, plane_slice
from repro.io.tables import format_table
from repro.obs import write_bench_json


def test_fig6_cavity_snapshots(benchmark, report):
    lid = 0.1
    wl = lid_cavity(base=(16, 16, 16), num_levels=3, reynolds=100.0,
                    lid_speed=lid, lattice="D3Q19", collision="bgk")

    def run():
        sim = Simulation.from_config(wl.spec, wl.sim_config())
        frames = []
        for target in (10, 40, 120):
            sim.run(target - (frames[-1][0] if frames else 0))
            _, speed = plane_slice(sim, axis=1, position=0.5)
            frames.append((target, speed))
        return sim, frames

    sim, frames = run_once(benchmark, run)
    assert sim.is_stable()

    rows = []
    energies = []
    for it, speed in frames:
        energies.append(float(np.nanmean(speed ** 2)))
        rows.append([it, float(np.nanmax(speed)) / lid,
                     float(np.nanmean(speed)) / lid])
    report("", format_table(
        ["Iteration", "max|u|/u_lid (mid-plane)", "mean|u|/u_lid"],
        rows, title="Fig. 6: cavity spin-up, 3 levels, 64 finest voxels",
        floatfmt="{:.3f}"))

    write_bench_json("fig6_cavity_flow", {
        "iterations": [it for it, _ in frames],
        "mean_speed_sq": energies,
        "max_u_over_lid": [float(np.nanmax(s)) / lid for _, s in frames]})

    # the flow spins up monotonically from rest toward the steady vortex
    assert energies[0] < energies[1] < energies[2]
    # the lid drags fluid: near-lid speed approaches the lid speed
    _, u = composite_fields(sim)
    lid_layer = u[0][:, :, -1]
    assert np.nanmax(lid_layer) > 0.5 * lid
    # interior recirculation: negative return flow below the lid
    assert np.nanmin(u[0][:, :, u.shape[3] // 2]) < 0.0
    # weak compressibility: density stays in the low-Mach band (the driven
    # corners carry the classic pressure singularity, hence the headroom)
    rho, _ = composite_fields(sim)
    assert abs(np.nanmax(rho) - 1.0) < 0.15 and abs(np.nanmin(rho) - 1.0) < 0.15

"""Figure 9 — ablation of the fusion configurations on the sphere workload.

The paper's bar chart shows MLUPS for: baseline (4b), fused CA, fused SE,
fused SO, all single fusions, and the full CASE+SO configuration, with
the finest-level collide-stream fusion contributing the largest share.
We regenerate the series on the A100 cost model at the smallest Table-I
size and assert the paper's two qualitative findings: monotone benefit
of adding fusions, and CASE fusion being the largest single jump.
"""

from conftest import run_once

from repro.bench.harness import full_scale_mlups, measure
from repro.bench.workloads import TABLE1_DISTRIBUTIONS, sphere_tunnel
from repro.core.fusion import ABLATION_CONFIGS
from repro.io.tables import format_table
from repro.obs import write_bench_json


def test_fig9_fusion_ablation(benchmark, report):
    wl = sphere_tunnel(scale=0.125)

    def run():
        return {cfg.name: measure(wl, cfg, steps=3) for cfg in ABLATION_CONFIGS}

    results = run_once(benchmark, run)

    dist = list(TABLE1_DISTRIBUTIONS[0])
    rows = []
    mlups = {}
    for cfg in ABLATION_CONFIGS:
        m = results[cfg.name]
        full, _ = full_scale_mlups(m, dist)
        mlups[cfg.name] = full
        rows.append([cfg.name, f"{m.kernels_per_step:.0f}",
                     m.bytes_per_step / 1e6, full])
    report("", format_table(
        ["Config", "Kernels/step", "MB/step (scaled)", "MLUPS (272x192x272)"],
        rows, title="Fig. 9: fusion ablation on the A100 cost model"))

    write_bench_json("fig9_fusion_ablation", {
        "mlups_full_scale": mlups,
        "measurements": {cfg.name: results[cfg.name].summary()
                         for cfg in ABLATION_CONFIGS}})

    base = mlups["baseline-4b"]
    full = mlups["ours-4f"]
    # every fusion helps over the baseline
    assert all(v >= base * 0.98 for v in mlups.values())
    # the fully fused variant wins
    assert full == max(mlups.values())
    # the finest-level CASE fusion is the largest single contribution
    jump_case = full - mlups["fuse-CA+SE+SO"]
    singles = [mlups["fuse-CA"] - base, mlups["fuse-SE"] - base,
               mlups["fuse-SO"] - base]
    assert jump_case > max(singles)
    benchmark.extra_info["mlups"] = mlups

"""Future work (Section VII) — projected multi-GPU strong scaling.

The paper positions the fused single-GPU algorithm as the foundation for
a multi-GPU extension.  This bench projects that extension with the slab
decomposition model of :mod:`repro.gpu.multigpu` on the largest Table-I
workload: near-linear scaling while DRAM traffic dominates, efficiency
decaying as the undivided per-step overhead and NVLink halos grow
relatively larger.
"""

from conftest import run_once

from repro.bench.harness import full_scale_mlups, measure
from repro.bench.workloads import TABLE1_DISTRIBUTIONS, sphere_tunnel
from repro.core.fusion import FUSED_FULL
from repro.gpu.multigpu import NVLINK3, PCIE4, scaling_curve
from repro.io.tables import format_table
from repro.obs import write_bench_json


def test_multigpu_scaling_projection(benchmark, report):
    wl = sphere_tunnel(scale=0.125)

    def run():
        return measure(wl, FUSED_FULL, steps=2)

    m = run_once(benchmark, run)
    counts = [int(c) for c in reversed(TABLE1_DISTRIBUTIONS[2])]
    _, cost = full_scale_mlups(m, list(TABLE1_DISTRIBUTIONS[2]))

    rows_nv = scaling_curve(cost, m.steps, counts, max_gpus=8, link=NVLINK3)
    rows_pci = scaling_curve(cost, m.steps, counts, max_gpus=8, link=PCIE4)
    table = [[r["gpus"], r["mlups"], r["speedup"], r["efficiency"],
              p["mlups"], p["speedup"]]
             for r, p in zip(rows_nv, rows_pci)]
    report("", format_table(
        ["GPUs", "NVLink MLUPS", "Speedup", "Efficiency", "PCIe MLUPS",
         "PCIe speedup"],
        table, title="Projected strong scaling, 816x576x816 sphere workload"))

    write_bench_json("multigpu_scaling", {
        "nvlink": rows_nv, "pcie": rows_pci})

    speedups = [r["speedup"] for r in rows_nv]
    assert speedups[1] > 1.6          # 2 GPUs pay off clearly
    assert speedups[7] > 3.0          # 8 GPUs still scale...
    assert speedups[7] < 8.0          # ...sublinearly
    assert rows_pci[7]["speedup"] < speedups[7]  # link bandwidth matters
    benchmark.extra_info["speedup_8gpu"] = speedups[7]

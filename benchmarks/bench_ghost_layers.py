"""Section IV-A — ghost-layer memory: one coarse layer vs four fine layers.

The optimized algorithm allocates a single ghost layer on the coarse
side of each interface (holding a Q-component accumulator), replacing
the baseline's four fine ghost layers that duplicate full population
sets in both buffers.  We compile both layouts on the same domains and
report exact byte counts — regenerating the paper's memory-reduction
claim (it quotes a 1/3 reduction counted in overlapped coarse layers;
exact per-cell accounting shows an even larger saving).
"""

from conftest import run_once

from repro.bench.workloads import lid_cavity, sphere_tunnel
from repro.core.simulation import Simulation
from repro.gpu.memory import ghost_layer_bytes, grid_memory_report
from repro.io.tables import format_table
from repro.obs import write_bench_json


def test_ghost_layer_memory(benchmark, report):
    workloads = [lid_cavity(base=(16, 16, 16), num_levels=2, lattice="D3Q19"),
                 lid_cavity(base=(20, 20, 20), num_levels=3, lattice="D3Q19"),
                 sphere_tunnel(scale=0.125)]

    def run():
        out = []
        for wl in workloads:
            sim = Simulation.from_config(wl.spec, wl.sim_config())
            out.append((wl.name, sim.mgrid))
        return out

    grids = run_once(benchmark, run)

    rows = []
    for name, mgrid in grids:
        gb = ghost_layer_bytes(mgrid)
        total_opt = grid_memory_report(mgrid, scheme="optimized").total
        total_orig = grid_memory_report(mgrid, scheme="original").total
        rows.append([name, gb["original"] / 1e6, gb["optimized"] / 1e6,
                     gb["original"] / max(gb["optimized"], 1),
                     total_orig / total_opt])
        # the optimized layout always needs (much) less ghost memory
        assert gb["optimized"] * 3 <= gb["original"]
        assert total_opt < total_orig
    report("", format_table(
        ["Workload", "Ghost 4a (MB)", "Ghost 4b (MB)", "Ghost ratio",
         "Total ratio"],
        rows, title="Section IV-A: ghost-layer memory, original vs optimized"))
    write_bench_json("ghost_layers", {
        "rows": [{"workload": r[0], "ghost_original_mb": r[1],
                  "ghost_optimized_mb": r[2], "ghost_ratio": r[3],
                  "total_ratio": r[4]} for r in rows]})

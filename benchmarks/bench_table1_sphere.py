"""Table I — flow over a sphere: modified baseline (Fig. 4b) vs ours (Fig. 4f).

Runs the wind-tunnel-with-sphere workload functionally at a reduced
scale, times it (pytest-benchmark), and extrapolates the recorded kernel
trace to the paper's three domain sizes on the A100 cost model.

Paper's rows (MLUPS):
    272x192x272   483.63 / 1081.67   speedup 2.20
    544x384x544  1115.80 / 1646.37   speedup 1.48
    816x576x816  1299.70 / 1805.03   speedup 1.39
Expectation: same winner, speedup in the 1.3-2.3x band, decaying with size.
"""

from conftest import run_once

from repro.bench.harness import full_scale_mlups, measure
from repro.bench.workloads import TABLE1_DISTRIBUTIONS, TABLE1_SIZES, sphere_tunnel
from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE
from repro.io.tables import format_table
from repro.obs import write_bench_json

PAPER = ((483.63, 1081.67), (1115.80, 1646.37), (1299.70, 1805.03))


def test_table1_sphere(benchmark, report):
    wl = sphere_tunnel(scale=0.125)

    def run():
        mb = measure(wl, MODIFIED_BASELINE, steps=3)
        mo = measure(wl, FUSED_FULL, steps=3)
        return mb, mo

    mb, mo = run_once(benchmark, run)

    rows = []
    speedups = []
    for size, dist, paper in zip(TABLE1_SIZES, TABLE1_DISTRIBUTIONS, PAPER):
        fb, _ = full_scale_mlups(mb, list(dist))
        fo, _ = full_scale_mlups(mo, list(dist))
        speedups.append(fo / fb)
        rows.append(["x".join(map(str, size)),
                     f"{dist[0] / 1e6:.3g}/{dist[1] / 1e6:.3g}/{dist[2] / 1e6:.3g}",
                     fb, fo, fo / fb, f"{paper[0]:.0f}/{paper[1]:.0f}",
                     paper[1] / paper[0]])
    report("", format_table(
        ["Size", "Distribution (x1e6)", "Baseline", "Ours", "Speedup",
         "Paper B/O", "Paper x"],
        rows, title="Table I: sphere wind tunnel, A100-40GB cost model (MLUPS)"))
    report(f"functional wall-clock at scale 0.125: baseline "
           f"{mb.wall_mlups:.2f} vs ours {mo.wall_mlups:.2f} NumPy-MLUPS")

    benchmark.extra_info["speedups"] = speedups
    write_bench_json("table1_sphere", {
        "speedups": speedups,
        "sizes": ["x".join(map(str, s)) for s in TABLE1_SIZES],
        "baseline": mb.summary(), "ours": mo.summary()})
    assert all(fo > fb for fo, fb in [(s, 1.0) for s in speedups])
    assert speedups[0] > speedups[-1]          # speedup decays with size
    assert 1.3 <= min(speedups) and max(speedups) <= 2.6


def test_table1_functional_wallclock(benchmark, report):
    """The same comparison in honest NumPy wall-clock (fewer passes win too)."""
    wl = sphere_tunnel(scale=0.125)
    from repro.core.simulation import Simulation
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=FUSED_FULL))
    sim.run(1)  # warmup

    def step():
        sim.step()

    benchmark(step)
    report(f"fused coarse step on {sim.mgrid.active_per_level()} voxels: "
           f"{sim.wallclock_mlups():.2f} NumPy-MLUPS")
    write_bench_json("table1_functional_wallclock", {
        "numpy_mlups": sim.wallclock_mlups(),
        "active_per_level": sim.mgrid.active_per_level()})

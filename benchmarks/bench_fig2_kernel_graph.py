"""Figure 2 — data-dependency graphs of the baseline vs our implementation.

The paper's claim: the baseline needs ~3x more kernels per coarse step
with complex cross-level dependencies, while the optimized schedule is
far simpler.  We regenerate both DAGs for a three-level grid from the
recorded traces and print the node census by kernel type.
"""

from conftest import run_once

from repro.bench.workloads import lid_cavity
from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE
from repro.core.simulation import Simulation
from repro.io.tables import format_table
from repro.neon.graph import build_dependency_graph, graph_stats
from repro.obs import write_bench_json


def trace_one_step(config):
    # the schedule/DAG is dimension-independent; 2-D keeps the bench fast
    wl = lid_cavity(base=(24, 24), num_levels=3, lattice="D2Q9")
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=config))
    sim.run(2)  # second step gives the steady-state schedule
    return sim.runtime.last_step()


def test_fig2_kernel_graphs(benchmark, report):
    def run():
        return trace_one_step(MODIFIED_BASELINE), trace_one_step(FUSED_FULL)

    base_trace, ours_trace = run_once(benchmark, run)

    rows = []
    stats = {}
    for name, trace in (("baseline (Fig. 2 top)", base_trace),
                        ("ours (Fig. 2 bottom)", ours_trace)):
        g = build_dependency_graph(trace, reduce=False)
        s = graph_stats(g)
        stats[name] = s
        census = {}
        for r in trace:
            census[f"{r.name}{r.level}"] = census.get(f"{r.name}{r.level}", 0) + 1
        nodes = " ".join(f"{k}x{v}" for k, v in sorted(census.items()))
        rows.append([name, s["kernels"], s["edges"], s["depth"], nodes])
    report("", format_table(
        ["Schedule", "Kernels", "Deps", "Sync depth", "Node census"],
        rows, title="Fig. 2: one coarse step of a 3-level grid"))

    kb = stats["baseline (Fig. 2 top)"]["kernels"]
    ko = stats["ours (Fig. 2 bottom)"]["kernels"]
    report(f"kernel reduction: {kb}/{ko} = {kb / ko:.2f}x "
           f"(paper: 'around three times fewer kernels')")
    write_bench_json("fig2_kernel_graph", {
        "stats": stats, "kernels_baseline": kb, "kernels_ours": ko,
        "reduction": kb / ko})
    assert 2.5 <= kb / ko <= 3.5
    assert stats["ours (Fig. 2 bottom)"]["depth"] < \
        stats["baseline (Fig. 2 top)"]["depth"]

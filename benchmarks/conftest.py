"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark prints its table/figure reproduction through ``report``,
which bypasses pytest's output capture so the numbers appear in the
``pytest benchmarks/ --benchmark-only`` log that EXPERIMENTS.md cites.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print straight to the terminal, ignoring pytest capture."""
    def _report(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)
    return _report


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are too heavy to repeat)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Section VI-A comparisons: Palabos, waLBerla, and uniform vs refined.

Paper's observations on the lid-driven cavity:

* Palabos (multi-core CPU, nonuniform): 2.3 s/iteration vs ours 0.015 s —
  more than two orders of magnitude.  Stand-in: our own CPU execution
  (the functional NumPy engine) against the A100 cost model.
* waLBerla's freshly ported GPU refinement: O(10) MLUPS vs ours >2250 —
  "merely porting CPU code to GPU is not enough".  Stand-in: the
  original distributed-era schedule (Fig. 4a) costed as a naive port
  (sync after every kernel, uncoalesced-access bandwidth).
* Uniform vs refined time-to-solution differs by only 1.18x for this
  cavity refinement — refinement pays off in *memory*, not speed, when
  most of the volume is fine anyway.

All stand-ins are substitutions for closed/unavailable comparators and
are flagged as such in EXPERIMENTS.md.
"""

import dataclasses

from conftest import run_once

from repro.bench.harness import full_scale_mlups, measure
from repro.bench.workloads import lid_cavity
from repro.core.fusion import FUSED_FULL, ORIGINAL_BASELINE
from repro.core.simulation import mlups
from repro.gpu.costmodel import cost_trace, predicted_mlups
from repro.gpu.device import A100_40GB
from repro.io.tables import format_table
from repro.obs import write_bench_json

#: An unoptimized direct CPU->GPU port: AoS accesses cut the sustained
#: bandwidth, and a device synchronisation follows every kernel.
NAIVE_PORT = dataclasses.replace(A100_40GB, name="A100-naive-port",
                                 sustained_fraction=0.05,
                                 sync_overhead_us=200.0)

# Paper-scale cavity: 240 finest voxels across the box, 3 levels.
PAPER_CAVITY_COUNTS = None  # filled from the scaled grid's distribution


def test_palabos_and_walberla_comparison(benchmark, report):
    wl = lid_cavity(base=(16, 16, 16), num_levels=3, lattice="D3Q19")

    def run():
        ours = measure(wl, FUSED_FULL, steps=2)
        naive = measure(wl, ORIGINAL_BASELINE, steps=2)
        return ours, naive

    ours, naive = run_once(benchmark, run)

    # scale both traces to the paper's cavity (240 finest voxels: 3.375x
    # linear over our 64-finest instance -> 38.4x voxels per level)
    factor = (240 / 64) ** 3
    full_counts = [c * factor for c in reversed(ours.active_per_level)]

    ours_full, ours_cost = full_scale_mlups(ours, full_counts, kbc=False)
    from repro.bench.model import level_factors, scale_trace
    vol, area = level_factors(naive.active_per_level,
                              list(reversed(full_counts)), d=3)
    naive_trace = scale_trace(naive.trace, vol, area)
    naive_cost = cost_trace(naive_trace, NAIVE_PORT, kbc=False, concurrent=False)
    naive_full = predicted_mlups([int(c) for c in reversed(full_counts)],
                                 naive.steps, naive_cost)

    # Palabos stand-in: the functional CPU execution of the same workload
    cpu_s_per_iter = ours.wall_seconds / ours.steps * factor  # scaled volume
    gpu_s_per_iter = ours_cost.per_step(ours.steps) / 1e6

    rows = [
        ["Palabos stand-in (CPU, measured)", f"{cpu_s_per_iter:.3f} s/iter",
         f"{mlups(ours.active_per_level, 1, ours.wall_seconds / ours.steps) :.1f} MLUPS"],
        ["ours (A100 model)", f"{gpu_s_per_iter:.4f} s/iter",
         f"{ours_full:.0f} MLUPS"],
        ["naive GPU port (waLBerla stand-in)", "-", f"{naive_full:.0f} MLUPS"],
    ]
    report("", format_table(["System", "Time/iteration", "Throughput"], rows,
                            title="Section VI-A comparisons (cavity, 240 finest "
                                  "voxels; paper: Palabos 2.3 s vs ours 0.015 s, "
                                  "waLBerla O(10) MLUPS vs ours >2250)"))

    write_bench_json("comparisons", {
        "ours_mlups": ours_full, "naive_port_mlups": naive_full,
        "cpu_s_per_iter": cpu_s_per_iter, "gpu_s_per_iter": gpu_s_per_iter})
    assert cpu_s_per_iter / gpu_s_per_iter > 100      # two orders of magnitude
    assert ours_full / naive_full > 10                 # order of magnitude
    assert ours_full > 1500                            # paper: >2250 MLUPS
    benchmark.extra_info["ours_mlups"] = ours_full
    benchmark.extra_info["naive_mlups"] = naive_full


def test_uniform_vs_refined_time_to_solution(benchmark, report):
    """Paper: refined is only 1.18x faster in time-to-solution here."""
    wl = lid_cavity(base=(16, 16, 16), num_levels=3, lattice="D3Q19")

    def run():
        refined = measure(wl, FUSED_FULL, steps=2)
        uni_spec_wl = lid_cavity(base=(32, 32, 32), num_levels=1,
                                 lattice="D3Q19")
        uniform = measure(uni_spec_wl, FUSED_FULL, steps=2)
        return refined, uniform

    refined, uniform = run_once(benchmark, run)

    # same physical end time: one refined coarse step == 4 finest steps;
    # the uniform grid runs everything at the finest resolution
    factor = (240 / 64) ** 3
    refined_counts = [c * factor for c in reversed(refined.active_per_level)]
    _, refined_cost = full_scale_mlups(refined, refined_counts, kbc=False)
    t_refined = refined_cost.per_step(refined.steps)  # us per coarse step

    uniform_full = [240 ** 3]
    _, uniform_cost = full_scale_mlups(uniform, uniform_full, kbc=False)
    # 4 finest-dt steps advance the uniform grid by one coarse time unit
    t_uniform = 4.0 * uniform_cost.per_step(uniform.steps)

    ratio = t_uniform / t_refined
    report("", f"uniform 240^3 vs 3-level refined cavity, time per coarse "
               f"time unit: {t_uniform / 1e3:.2f} ms vs {t_refined / 1e3:.2f} ms "
               f"-> refined {ratio:.2f}x faster (paper: 1.18x; the exact factor "
               f"depends on how much volume the fine shells cover)")
    write_bench_json("uniform_vs_refined", {
        "t_uniform_us": t_uniform, "t_refined_us": t_refined, "speedup": ratio})
    assert ratio > 1.0          # refined wins...
    assert ratio < 5.0          # ...but not dramatically, as the paper notes
    benchmark.extra_info["speedup"] = ratio
